"""Tests for loop identification and fake-loop removal (§III-D)."""

import networkx as nx
import pytest

from repro.core import SkeletonExtractor, SkeletonParams, identify_loops
from repro.core.loops import (
    hop_clearance,
    isoperimetric_ratio,
    opposite_width,
    simplify_closed_walk,
    site_cycle_rings,
)
from repro.geometry.primitives import Point
from repro.network import UnitDiskRadio, build_network


class TestSimplifyClosedWalk:
    def test_simple_cycle_unchanged(self):
        assert simplify_closed_walk([1, 2, 3, 4]) == [1, 2, 3, 4]

    def test_lens_detour_removed(self):
        assert simplify_closed_walk([1, 2, 5, 6, 2, 3]) == [1, 2, 3]

    def test_nested_detours(self):
        assert simplify_closed_walk([1, 2, 3, 2, 4, 1, 5]) == [1, 5]

    def test_empty(self):
        assert simplify_closed_walk([]) == []

    def test_result_has_no_duplicates(self):
        out = simplify_closed_walk([1, 2, 3, 4, 2, 5, 3, 6])
        assert len(out) == len(set(out))


class TestHopClearance:
    def test_multisource_distances(self):
        positions = [Point(float(i), 0.0) for i in range(6)]
        net = build_network(positions, radio=UnitDiskRadio(1.1))
        clearance = hop_clearance(net, {0, 5})
        assert clearance == [0, 1, 2, 2, 1, 0]

    def test_no_boundary_gives_unreached(self):
        positions = [Point(0, 0), Point(1, 0)]
        net = build_network(positions, radio=UnitDiskRadio(1.5))
        clearance = hop_clearance(net, set())
        assert clearance == [2, 2]


class TestSiteCycleRings:
    def test_square_cycle_found(self):
        g = nx.Graph()
        g.add_weighted_edges_from(
            [(1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 1, 1)]
        )
        rings = site_cycle_rings(g)
        assert len(rings) == 1
        assert set(rings[0]) == {1, 2, 3, 4}

    def test_square_with_chord_gives_two_triangles(self):
        g = nx.Graph()
        g.add_weighted_edges_from(
            [(1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 1, 1), (1, 3, 1)]
        )
        rings = site_cycle_rings(g)
        assert len(rings) == 2
        assert all(len(r) == 3 for r in rings)

    def test_tree_has_no_rings(self):
        g = nx.Graph()
        g.add_weighted_edges_from([(1, 2, 1), (2, 3, 1), (2, 4, 1)])
        assert site_cycle_rings(g) == []

    def test_rings_are_independent(self):
        g = nx.Graph()
        # Two squares sharing an edge: rank 2.
        g.add_weighted_edges_from(
            [(1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 1, 1),
             (2, 5, 1), (5, 6, 1), (6, 3, 1)]
        )
        rings = site_cycle_rings(g)
        assert len(rings) == 2

    def test_empty_graph(self):
        assert site_cycle_rings(nx.Graph()) == []


class TestOppositeWidth:
    def test_thin_braid_has_small_width(self):
        # Two parallel strands of a 2 x 6 grid form a thin cycle.
        positions = [Point(float(i), float(j)) for j in range(2) for i in range(6)]
        net = build_network(positions, radio=UnitDiskRadio(1.05))
        cycle = [0, 1, 2, 3, 4, 5, 11, 10, 9, 8, 7, 6]
        assert opposite_width(net, cycle) <= 2

    def test_too_short_cycle(self):
        positions = [Point(0, 0), Point(1, 0), Point(0.5, 1)]
        net = build_network(positions, radio=UnitDiskRadio(1.5))
        assert opposite_width(net, [0, 1, 2]) == 0


class TestEndToEndLoops:
    def test_annulus_keeps_one_genuine_loop(self, annulus_result):
        genuine = annulus_result.loop_analysis.genuine
        assert len(genuine) == 1
        assert genuine[0].length >= 20

    def test_rectangle_keeps_no_loops(self, rectangle_result):
        assert rectangle_result.loop_analysis.genuine == []

    def test_fake_records_carry_removed_pair(self, rectangle_result):
        for fake in rectangle_result.loop_analysis.fake:
            assert fake.removed_pair is not None

    def test_kept_and_removed_pairs_disjoint(self, annulus_result):
        analysis = annulus_result.loop_analysis
        assert not (analysis.kept_pairs & analysis.removed_pairs)

    def test_genuine_iso_ratio_above_threshold(self, annulus_result):
        params = SkeletonParams()
        for loop in annulus_result.loop_analysis.genuine:
            assert loop.iso_ratio >= params.isoperimetric_threshold

    def test_witness_strategy_runs(self, annulus_network):
        from repro.core import LoopStrategy

        result = SkeletonExtractor(
            SkeletonParams(loop_strategy=LoopStrategy.VORONOI_WITNESS)
        ).extract(annulus_network)
        assert result.skeleton.is_connected()

    def test_interior_strategy_runs(self, annulus_network):
        from repro.core import LoopStrategy

        result = SkeletonExtractor(
            SkeletonParams(loop_strategy=LoopStrategy.INTERIOR)
        ).extract(annulus_network)
        assert result.skeleton.is_connected()


class TestBackendBitIdentity:
    """The CSR engine ports of the loop scans must equal the references."""

    def test_hop_clearance_engine_matches_reference(self, annulus_network):
        net = annulus_network
        boundary = set(list(net.nodes())[::7])
        engine = net.traversal()
        assert hop_clearance(net, boundary, engine=engine) == \
            hop_clearance(net, boundary)

    def test_hop_clearance_engine_empty_boundary(self, annulus_network):
        engine = annulus_network.traversal()
        assert hop_clearance(annulus_network, set(), engine=engine) == \
            hop_clearance(annulus_network, set())

    def test_opposite_width_engine_matches_reference(self, annulus_result):
        net = annulus_result.network
        engine = net.traversal()
        for loop in annulus_result.loop_analysis.loops:
            ordered = loop.ordered
            if len(ordered) < 4:
                continue
            for samples in (4, 6, 9):
                assert opposite_width(net, ordered, samples=samples,
                                      engine=engine) == \
                    opposite_width(net, ordered, samples=samples)

    def test_identify_loops_identical_across_backends(self, annulus_network):
        outcomes = {}
        for backend in ("reference", "vectorized"):
            params = SkeletonParams(backend=backend)
            result = SkeletonExtractor(params).extract(annulus_network)
            outcomes[backend] = result.loop_analysis
        ref, vec = outcomes["reference"], outcomes["vectorized"]
        assert vec.kept_pairs == ref.kept_pairs
        assert vec.removed_pairs == ref.removed_pairs
        assert [(l.ordered, l.is_fake, l.iso_ratio) for l in vec.loops] == \
            [(l.ordered, l.is_fake, l.iso_ratio) for l in ref.loops]
