"""Tests for critical skeleton node identification (Definitions 2–5)."""

import pytest

from repro.core import (
    SkeletonParams,
    compute_indices,
    find_critical_nodes,
    is_locally_maximal,
)
from repro.core.neighborhood import IndexData
from repro.geometry.primitives import Point
from repro.network import UnitDiskRadio, build_network


def path_network(n=7):
    positions = [Point(float(i), 0.0) for i in range(n)]
    return build_network(positions, radio=UnitDiskRadio(1.1))


class TestLocalMaximality:
    def test_peak_is_maximal(self):
        net = path_network(5)
        values = [1.0, 2.0, 5.0, 2.0, 1.0]
        assert is_locally_maximal(net, 2, values, hops=1)
        assert not is_locally_maximal(net, 1, values, hops=1)

    def test_tie_broken_by_id(self):
        net = path_network(3)
        values = [3.0, 3.0, 1.0]
        # Node 1 wins the tie against node 0 lexicographically.
        assert is_locally_maximal(net, 1, values, hops=1)
        assert not is_locally_maximal(net, 0, values, hops=1)

    def test_larger_hops_suppresses_smaller_peaks(self):
        net = path_network(7)
        values = [0, 5, 0, 0, 0, 6, 0]
        assert is_locally_maximal(net, 1, values, hops=1)
        assert is_locally_maximal(net, 5, values, hops=1)
        # Over 4 hops, node 1 sees node 5's higher value.
        assert not is_locally_maximal(net, 1, values, hops=4)
        assert is_locally_maximal(net, 5, values, hops=4)


class TestFindCriticalNodes:
    def test_at_least_one_critical_node(self, rectangle_network):
        critical = find_critical_nodes(rectangle_network)
        assert len(critical) >= 1

    def test_global_maximum_is_always_critical(self, rectangle_network):
        data = compute_indices(rectangle_network)
        critical = find_critical_nodes(rectangle_network, data)
        best = max(rectangle_network.nodes(), key=lambda v: (data.index[v], v))
        assert best in critical

    def test_plateau_elects_exactly_one(self):
        net = path_network(4)
        data = IndexData(
            khop_sizes=[1] * 4, centrality=[1.0] * 4, index=[1.0] * 4
        )
        params = SkeletonParams(local_max_hops=4)
        critical = find_critical_nodes(net, data, params)
        assert critical == [3]  # highest id on a full plateau

    def test_no_two_adjacent_criticals_with_distinct_indices(self, rectangle_network):
        data = compute_indices(rectangle_network)
        critical = set(find_critical_nodes(rectangle_network, data))
        for u in critical:
            for v in rectangle_network.neighbors(u):
                assert v not in critical

    def test_larger_locality_means_fewer_criticals(self, rectangle_network):
        few = find_critical_nodes(
            rectangle_network, params=SkeletonParams(local_max_hops=3)
        )
        many = find_critical_nodes(
            rectangle_network, params=SkeletonParams(local_max_hops=1)
        )
        assert len(few) <= len(many)

    def test_criticals_are_medially_placed(self, rectangle_network):
        critical = find_critical_nodes(rectangle_network)
        field = rectangle_network.field
        clearances = [
            field.distance_to_boundary(rectangle_network.positions[v])
            for v in critical
        ]
        # On a 100 x 40 rectangle the skeleton clearance is up to 20;
        # critical nodes should average well away from the walls.
        assert sum(clearances) / len(clearances) > 8.0
