"""Tests for the analysis package: metrics, stability, complexity fits."""

import math

import pytest

from repro.analysis import (
    boundary_detection_quality,
    compare_extractors,
    evaluate_skeleton,
    fit_power_law,
    messages_per_node,
    network_wraps_point,
    preserved_holes,
    skeleton_stability,
)
from repro.geometry.primitives import Point


class TestPreservedHoles:
    def test_annulus_hole_is_wrapped(self, annulus_network):
        assert preserved_holes(annulus_network) == 1

    def test_rectangle_has_none(self, rectangle_network):
        assert preserved_holes(rectangle_network) == 0

    def test_wrap_point_outside_field(self, rectangle_network):
        assert not network_wraps_point(rectangle_network, Point(-50, -50))

    def test_requires_field(self):
        from repro.network import UnitDiskRadio, build_network

        net = build_network([Point(0, 0)], radio=UnitDiskRadio(1.0))
        with pytest.raises(ValueError):
            preserved_holes(net)


class TestEvaluateSkeleton:
    def test_grades_extraction(self, annulus_network, annulus_result):
        quality = evaluate_skeleton(
            annulus_network,
            annulus_result.skeleton.nodes,
            annulus_result.skeleton.edges,
        )
        assert quality.connected
        assert quality.cycle_count == 1
        assert quality.preserved_hole_count == 1
        assert quality.homotopy_ok
        assert quality.mean_medialness < 3.0  # within 3 radio ranges
        assert 0.0 <= quality.coverage <= 1.0

    def test_empty_skeleton(self, rectangle_network):
        quality = evaluate_skeleton(rectangle_network, [], [])
        assert quality.num_nodes == 0
        assert math.isinf(quality.mean_medialness)


class TestBoundaryQuality:
    def test_perfect_detection(self, rectangle_network):
        from repro.baselines import geometric_boundary_nodes

        truth = geometric_boundary_nodes(rectangle_network)
        precision, recall = boundary_detection_quality(rectangle_network, truth)
        assert precision == pytest.approx(1.0)
        assert recall == pytest.approx(1.0)

    def test_empty_detection(self, rectangle_network):
        precision, recall = boundary_detection_quality(rectangle_network, set())
        assert (precision, recall) == (0.0, 0.0)


class TestStability:
    def test_identical_sets_score_zero(self, rectangle_network, rectangle_result):
        nodes = rectangle_result.skeleton.nodes
        score = skeleton_stability(
            rectangle_network, nodes, rectangle_network, nodes
        )
        assert score.mean_distance == 0.0
        assert score.hausdorff == 0.0

    def test_empty_set_is_infinite(self, rectangle_network, rectangle_result):
        score = skeleton_stability(
            rectangle_network, rectangle_result.skeleton.nodes,
            rectangle_network, [],
        )
        assert math.isinf(score.mean_distance)

    def test_symmetric(self, rectangle_network, rectangle_result):
        a = list(rectangle_result.skeleton.nodes)[:10]
        b = list(rectangle_result.skeleton.nodes)[5:15]
        s1 = skeleton_stability(rectangle_network, a, rectangle_network, b)
        s2 = skeleton_stability(rectangle_network, b, rectangle_network, a)
        assert s1.mean_distance == pytest.approx(s2.mean_distance)
        assert s1.hausdorff == pytest.approx(s2.hausdorff)


class TestComplexityFits:
    def test_exact_linear_law(self):
        xs = [100, 200, 400, 800]
        ys = [5 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0)
        assert fit.coefficient == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_square_root_law(self):
        xs = [100, 400, 1600]
        ys = [math.sqrt(x) for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_messages_per_node(self):
        assert messages_per_node(900, 100) == pytest.approx(9.0)
        with pytest.raises(ValueError):
            messages_per_node(10, 0)


class TestComparison:
    def test_compare_runs_all_methods(self, rectangle_network):
        rows = compare_extractors(rectangle_network,
                                  include_detected_boundaries=False)
        methods = [row.method for row in rows]
        assert "proposed" in methods
        assert "map[true]" in methods
        assert "case[true]" in methods

    def test_proposed_needs_no_boundary(self, rectangle_network):
        rows = compare_extractors(rectangle_network,
                                  include_detected_boundaries=False)
        by_method = {row.method: row for row in rows}
        assert not by_method["proposed"].needs_boundary_input
        assert by_method["map[true]"].needs_boundary_input
