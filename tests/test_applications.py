"""Tests for skeleton-aided naming and routing."""

import pytest

from repro.applications import SkeletonRouter, evaluate_routing
from repro.core.refine import SkeletonGraph


@pytest.fixture(scope="module")
def router(rectangle_network, rectangle_result):
    return SkeletonRouter(rectangle_network, rectangle_result.skeleton)


class TestNaming:
    def test_every_node_named(self, rectangle_network, router):
        for v in rectangle_network.nodes():
            name = router.name_of(v)
            assert name.offset >= 0

    def test_skeleton_nodes_anchor_themselves(self, rectangle_result, router):
        for s in list(rectangle_result.skeleton.nodes)[:10]:
            name = router.name_of(s)
            assert name.anchor == s
            assert name.offset == 0

    def test_unknown_node_rejected(self, router):
        with pytest.raises(ValueError):
            router.name_of(10 ** 9)

    def test_empty_skeleton_rejected(self, rectangle_network):
        with pytest.raises(ValueError):
            SkeletonRouter(rectangle_network, SkeletonGraph(nodes=set(), edges=set()))


class TestRouting:
    def test_route_is_a_network_walk(self, rectangle_network, router):
        path = router.route(0, rectangle_network.num_nodes - 1)
        assert path is not None
        assert path[0] == 0
        assert path[-1] == rectangle_network.num_nodes - 1
        for a, b in zip(path, path[1:]):
            assert rectangle_network.has_edge(a, b)

    def test_route_has_no_repeats(self, rectangle_network, router):
        path = router.route(1, rectangle_network.num_nodes // 2)
        assert path is not None
        assert len(path) == len(set(path))

    def test_route_to_self_neighbourhood(self, router):
        path = router.route(0, 1)
        assert path is not None

    def test_stretch_is_bounded(self, rectangle_network, rectangle_result):
        study = evaluate_routing(rectangle_network, rectangle_result,
                                 pairs=60, seed=2)
        assert study.delivery_rate == 1.0
        assert 1.0 <= study.mean_stretch < 3.0
