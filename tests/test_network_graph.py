"""Unit tests for SensorNetwork and build_network."""

import random

import numpy as np
import pytest

from repro.geometry import Field, Point, make_field
from repro.geometry.shapes import rectangle_ring
from repro.network import UnitDiskRadio, build_network, line_of_sight_blocked
from repro.network.graph import UNREACHED, SensorNetwork


def chain(n):
    """A simple path network 0-1-2-...-n-1 at unit spacing."""
    positions = [Point(float(i), 0.0) for i in range(n)]
    return build_network(positions, radio=UnitDiskRadio(1.1))


class TestConstruction:
    def test_adjacency_is_symmetric(self, rectangle_network):
        for u in rectangle_network.nodes():
            for v in rectangle_network.neighbors(u):
                assert u in rectangle_network.neighbors(v)

    def test_no_self_loops(self, rectangle_network):
        for u in rectangle_network.nodes():
            assert u not in rectangle_network.neighbors(u)

    def test_udg_links_within_range_only(self):
        positions = [Point(0, 0), Point(3, 0), Point(7, 0)]
        net = build_network(positions, radio=UnitDiskRadio(4.0))
        assert net.has_edge(0, 1)
        assert net.has_edge(1, 2)
        assert not net.has_edge(0, 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork([Point(0, 0)], [[0], [0]])

    def test_neighbor_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork([Point(0, 0)], [[5]])

    def test_self_neighbor_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork([Point(0, 0), Point(1, 0)], [[0], [0]])

    def test_average_degree(self):
        net = chain(3)
        assert net.average_degree == pytest.approx(4 / 3)

    def test_empty_network(self):
        net = build_network([], radio=UnitDiskRadio(1.0))
        assert net.num_nodes == 0
        assert net.is_connected()


class TestLineOfSight:
    def test_wall_blocks_links(self):
        # Two nodes on either side of a hole wall.
        field = Field(
            outer=rectangle_ring(0, 0, 10, 10),
            holes=[rectangle_ring(4, 0.5, 6, 9.5)],
        )
        positions = [Point(3.5, 5), Point(6.5, 5)]
        net = build_network(positions, radio=UnitDiskRadio(5.0), field=field)
        assert not net.has_edge(0, 1)

    def test_clear_path_keeps_links(self):
        field = Field(outer=rectangle_ring(0, 0, 10, 10))
        positions = [Point(3.5, 5), Point(6.5, 5)]
        net = build_network(positions, radio=UnitDiskRadio(5.0), field=field)
        assert net.has_edge(0, 1)

    def test_los_can_be_disabled(self):
        field = Field(
            outer=rectangle_ring(0, 0, 10, 10),
            holes=[rectangle_ring(4, 0.5, 6, 9.5)],
        )
        positions = [Point(3.5, 5), Point(6.5, 5)]
        net = build_network(positions, radio=UnitDiskRadio(5.0), field=field,
                            respect_line_of_sight=False)
        assert net.has_edge(0, 1)

    def test_helper_function(self):
        field = Field(
            outer=rectangle_ring(0, 0, 10, 10),
            holes=[rectangle_ring(4, 4, 6, 6)],
        )
        assert line_of_sight_blocked(field, Point(3, 5), Point(7, 5))
        assert not line_of_sight_blocked(field, Point(1, 1), Point(2, 1))


class TestTraversal:
    def test_bfs_distances_on_chain(self):
        net = chain(5)
        dist = net.bfs_distances(0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_max_hops(self):
        net = chain(5)
        dist = net.bfs_distances(0, max_hops=2)
        assert set(dist) == {0, 1, 2}

    def test_bfs_blocked_nodes(self):
        net = chain(5)
        dist = net.bfs_distances(0, blocked={2})
        assert set(dist) == {0, 1}

    def test_khop_sizes_chain(self):
        net = chain(5)
        assert net.k_hop_sizes(1) == [2, 3, 3, 3, 2]
        assert net.k_hop_sizes(1, include_self=False) == [1, 2, 2, 2, 1]

    def test_khop_rejects_zero(self):
        with pytest.raises(ValueError):
            chain(3).k_hop_sizes(0)

    def test_bfs_matches_networkx(self, rectangle_network):
        import networkx as nx

        g = rectangle_network.to_networkx()
        expected = nx.single_source_shortest_path_length(g, 0)
        assert rectangle_network.bfs_distances(0) == dict(expected)

    def test_multi_source_distances_and_paths(self):
        net = chain(6)
        dist, parent = net.multi_source_distances([0, 5])
        assert dist[0, 3] == 3
        assert dist[1, 3] == 2
        path = net.path_to_source(parent[0], 3)
        assert path == [3, 2, 1, 0]

    def test_multi_source_unreached(self):
        positions = [Point(0, 0), Point(100, 100)]
        net = build_network(positions, radio=UnitDiskRadio(1.0))
        dist, _ = net.multi_source_distances([0])
        assert dist[0, 1] == UNREACHED


class TestComponents:
    def test_connected_chain(self):
        assert chain(4).is_connected()

    def test_disconnected_components(self):
        positions = [Point(0, 0), Point(1, 0), Point(50, 0), Point(51, 0), Point(52, 0)]
        net = build_network(positions, radio=UnitDiskRadio(1.5))
        comps = net.connected_components()
        assert [len(c) for c in comps] == [3, 2]

    def test_largest_component_subgraph(self):
        positions = [Point(0, 0), Point(1, 0), Point(50, 0), Point(51, 0), Point(52, 0)]
        net = build_network(positions, radio=UnitDiskRadio(1.5))
        largest = net.largest_component_subgraph()
        assert largest.num_nodes == 3
        assert largest.is_connected()

    def test_induced_subgraph_compacts_ids(self):
        net = chain(5)
        sub = net.induced_subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_to_networkx_preserves_structure(self, rectangle_network):
        g = rectangle_network.to_networkx()
        assert g.number_of_nodes() == rectangle_network.num_nodes
        assert g.number_of_edges() == rectangle_network.num_edges
