"""The perf-regression guard's contract: shapes, comparability, gating.

The guard is plumbing, but broken plumbing here means CI silently stops
guarding — so tier-1 pins the load-bearing behaviours: every committed
``BENCH_*.json`` shape flattens into timing entries, incomparable runs
are skipped rather than mis-compared, and a *missing* baseline fails
loudly instead of printing a notice nobody reads.
"""

import json

from benchmarks.perf.check_regression import (
    comparability_error,
    main,
    timing_entries,
)


def _shard_report(wall_s=10.0, flood_s=3.0):
    return {
        "benchmark": "tiled sharded extraction",
        "scale": 1.0, "seed": 1, "grid": "4x4", "jobs": 2,
        "scenarios": [{
            "scenario": "mega_100k", "nodes": 104300,
            "wall_s": wall_s,
            "phases": {"shard:stage1": 4.0, "shard:flood": flood_s},
        }],
    }


class TestTimingEntries:
    def test_shard_shape_flattens(self):
        entries = timing_entries(_shard_report())
        assert entries["shard/mega_100k/wall_s"] == 10.0
        assert entries["shard/mega_100k/shard:flood"] == 3.0
        assert entries["shard/mega_100k/shard:stage1"] == 4.0

    def test_traversal_and_parallel_shapes_still_flatten(self):
        entries = timing_entries({
            "results": [{"scenario": "window", "nodes": 100,
                         "vectorized": {"stage1_s": 0.5}}],
            "arms": {"serial": {"wall_s": 2.0}},
        })
        assert entries["window/n=100/vectorized/stage1_s"] == 0.5
        assert entries["suite/serial/wall_s"] == 2.0


def _serving_report(wall_s=2.0, p99_ms=20.0):
    return {
        "benchmark": "serving",
        "seed": 7, "requests": 120, "clients": 6,
        "arms": {
            "cold": {"wall_s": wall_s, "latency_p99_ms": p99_ms},
            "warm_dedup": {"wall_s": 0.1, "latency_p99_ms": 0.5},
        },
    }


class TestServingShape:
    def test_serving_shape_flattens_with_its_own_prefix(self):
        entries = timing_entries(_serving_report())
        assert entries["serving/cold/wall_s"] == 2.0
        assert entries["serving/cold/latency_p99_s"] == 0.02
        assert entries["serving/warm_dedup/wall_s"] == 0.1
        # no entry may masquerade as a suite arm
        assert not any(label.startswith("suite/") for label in entries)

    def test_serving_regression_gates(self, tmp_path, capsys):
        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        base.write_text(json.dumps(_serving_report(wall_s=2.0, p99_ms=20.0)))
        fresh.write_text(json.dumps(_serving_report(wall_s=2.1, p99_ms=60.0)))
        assert main([str(base), str(fresh), "--gate"]) == 1
        out = capsys.readouterr().out
        assert "serving/cold/latency_p99_s" in out

    def test_matching_serving_reports_compare_clean(self, tmp_path):
        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        base.write_text(json.dumps(_serving_report()))
        fresh.write_text(json.dumps(_serving_report(wall_s=2.1)))
        assert main([str(base), str(fresh), "--gate"]) == 0

    def test_seed_mismatch_is_incomparable(self):
        other = dict(_serving_report(), seed=8)
        assert "seed differs" in comparability_error(_serving_report(),
                                                     other)


class TestComparability:
    def test_matching_shard_reports_compare(self):
        assert comparability_error(_shard_report(), _shard_report()) is None

    def test_grid_mismatch_is_incomparable(self):
        other = dict(_shard_report(), grid="2x2")
        assert "grid differs" in comparability_error(_shard_report(), other)

    def test_jobs_mismatch_is_incomparable(self):
        other = dict(_shard_report(), jobs=8)
        assert "jobs differs" in comparability_error(_shard_report(), other)


class TestMissingBaseline:
    def test_missing_baseline_fails(self, tmp_path, capsys):
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(_shard_report()))
        rc = main([str(tmp_path / "BENCH_shard.json"), str(fresh)])
        assert rc == 1
        assert "missing" in capsys.readouterr().out

    def test_allow_missing_baseline_flag(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(_shard_report()))
        rc = main([str(tmp_path / "BENCH_shard.json"), str(fresh),
                   "--allow-missing-baseline"])
        assert rc == 0


class TestGating:
    def test_regression_warns_without_gate(self, tmp_path):
        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        base.write_text(json.dumps(_shard_report(wall_s=10.0)))
        fresh.write_text(json.dumps(_shard_report(wall_s=20.0)))
        assert main([str(base), str(fresh)]) == 0

    def test_regression_fails_with_gate(self, tmp_path, capsys):
        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        base.write_text(json.dumps(_shard_report(wall_s=10.0)))
        fresh.write_text(json.dumps(_shard_report(wall_s=20.0)))
        assert main([str(base), str(fresh), "--gate"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_clean_comparison_passes(self, tmp_path):
        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        base.write_text(json.dumps(_shard_report()))
        fresh.write_text(json.dumps(_shard_report(wall_s=10.5)))
        assert main([str(base), str(fresh), "--gate"]) == 0
