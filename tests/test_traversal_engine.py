"""Equivalence of the vectorized CSR traversal engine and the BFS oracle.

Property-style checks on random UDG/QUDG networks across seeds: every
kernel of :class:`repro.network.TraversalEngine` must reproduce the pure
Python reference traversals exactly — k-hop sizes, l-centrality, multi-
source distances *and* parents (the engine is bit-identical by design),
parent-path validity, and the elected critical nodes.  Disconnected
graphs, isolated nodes and ``k`` beyond the diameter are covered
explicitly.
"""

import random

import numpy as np
import pytest

from repro.core import SkeletonExtractor
from repro.core.identification import find_critical_nodes, is_locally_maximal
from repro.core.neighborhood import (
    compute_indices,
    compute_khop_sizes,
    compute_l_centrality,
)
from repro.core.params import SkeletonParams
from repro.core.voronoi import build_voronoi
from repro.geometry import make_field
from repro.network import (
    QuasiUnitDiskRadio,
    SensorNetwork,
    UnitDiskRadio,
    build_network,
)
from repro.network.deployment import uniform_deployment
from repro.network.graph import UNREACHED


def random_network(seed, n=180, radio=None, shape="rectangle", radio_range=5.0):
    """A random deployment; deliberately *not* reduced to the largest
    component, so low-density seeds exercise disconnected graphs."""
    field = make_field(shape)
    rng = random.Random(seed)
    positions = uniform_deployment(field, n, rng=rng)
    radio = radio if radio is not None else UnitDiskRadio(radio_range)
    return build_network(positions, radio=radio, field=field, rng=rng)


def network_grid(seed):
    """UDG and QUDG variants for one seed (QUDG drops links at random,
    which fragments the graph at this density)."""
    return [
        random_network(seed),
        random_network(seed, radio=QuasiUnitDiskRadio(5.0, alpha=0.4, p=0.3)),
    ]


SEEDS = [1, 2, 5, 11]


@pytest.mark.parametrize("seed", SEEDS)
def test_khop_sizes_match_reference(seed):
    for net in network_grid(seed):
        engine = net.traversal(batch_width=48)
        # k = 64 far exceeds the diameter of these 180-node deployments.
        for k in (1, 2, 3, 4, 64):
            for include_self in (True, False):
                ref = net.k_hop_sizes(k, include_self=include_self)
                vec = engine.all_khop_sizes(k, include_self=include_self)
                assert vec.tolist() == ref


@pytest.mark.parametrize("seed", SEEDS)
def test_khop_stats_match_reference(seed):
    for net in network_grid(seed):
        engine = net.traversal(batch_width=48)
        for k, l in ((4, 4), (3, 3), (2, 4), (4, 2), (1, 1)):
            for include_self in (True, False):
                sizes_ref = net.k_hop_sizes(k, include_self=include_self)
                cent_ref = compute_l_centrality(
                    net, l, sizes_ref, include_self=include_self
                )
                sizes_vec, cent_vec = engine.khop_stats(
                    k, l, include_self=include_self
                )
                assert sizes_vec.tolist() == sizes_ref
                # Sums are integral in both backends, so the division
                # results are bit-identical, not merely close.
                assert cent_vec.tolist() == cent_ref


@pytest.mark.parametrize("seed", SEEDS)
def test_l_centrality_kernel_matches_reference(seed):
    net = random_network(seed)
    engine = net.traversal()
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, 50, size=net.num_nodes).tolist()
    for l in (1, 3):
        ref = compute_l_centrality(net, l, sizes)
        assert engine.l_centrality(l, sizes).tolist() == ref
    vec = compute_l_centrality(net, 2, sizes, backend="vectorized")
    assert vec == compute_l_centrality(net, 2, sizes, backend="reference")


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_source_distances_bit_identical(seed):
    for net in network_grid(seed):
        engine = net.traversal()
        rng = random.Random(seed)
        sites = sorted(rng.sample(range(net.num_nodes), 9))
        blocked = set(rng.sample(range(net.num_nodes), 15)) - set(sites)
        for blk in (None, blocked):
            dist_ref, parent_ref = net.multi_source_distances(sites, blocked=blk)
            dist_vec, parent_vec = engine.multi_source_distances(sites, blocked=blk)
            assert np.array_equal(dist_ref, dist_vec)
            assert np.array_equal(parent_ref, parent_vec)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_multi_source_parent_paths_valid(seed):
    net = random_network(seed)
    engine = net.traversal()
    rng = random.Random(seed)
    sites = sorted(rng.sample(range(net.num_nodes), 6))
    dist, parent = engine.multi_source_distances(sites)
    for si, site in enumerate(sites):
        for node in net.nodes():
            d = dist[si, node]
            if d == UNREACHED:
                assert parent[si, node] == -1
                continue
            path = net.path_to_source(parent[si], node)
            assert len(path) == d + 1
            assert path[0] == node and path[-1] == site
            for a, b in zip(path, path[1:]):
                assert net.has_edge(a, b)


@pytest.mark.parametrize("seed", SEEDS)
def test_local_maxima_match_reference(seed):
    for net in network_grid(seed):
        engine = net.traversal()
        rng = np.random.default_rng(seed)
        # Quantized values force plateaus, exercising the id tie-break.
        values = np.round(rng.random(net.num_nodes) * 4, 1).tolist()
        for hops in (1, 2, 3):
            ref = [
                is_locally_maximal(net, node, values, hops=hops)
                for node in net.nodes()
            ]
            assert engine.all_local_maxima(values, hops=hops).tolist() == ref


@pytest.mark.parametrize("seed", SEEDS)
def test_critical_node_election_identical(seed):
    for net in network_grid(seed):
        ref_params = SkeletonParams(backend="reference")
        vec_params = SkeletonParams(backend="vectorized")
        idx_ref = compute_indices(net, ref_params)
        idx_vec = compute_indices(net, vec_params)
        assert idx_vec.khop_sizes == idx_ref.khop_sizes
        assert idx_vec.centrality == idx_ref.centrality
        assert idx_vec.index == idx_ref.index
        crit_ref = find_critical_nodes(net, idx_ref, ref_params)
        crit_vec = find_critical_nodes(net, idx_vec, vec_params)
        assert crit_vec == crit_ref


def test_full_extraction_identical_across_backends():
    net = random_network(3, n=260)
    if not net.is_connected():
        net = net.largest_component_subgraph()
    res_ref = SkeletonExtractor(SkeletonParams(backend="reference")).extract(net)
    res_vec = SkeletonExtractor(SkeletonParams(backend="vectorized")).extract(net)
    assert res_vec.critical_nodes == res_ref.critical_nodes
    assert np.array_equal(res_vec.voronoi.dist, res_ref.voronoi.dist)
    assert np.array_equal(res_vec.voronoi.parent, res_ref.voronoi.parent)
    assert res_vec.coarse.nodes == res_ref.coarse.nodes
    assert res_vec.coarse.edges == res_ref.coarse.edges
    assert res_vec.skeleton.nodes == res_ref.skeleton.nodes


def test_voronoi_identical_across_backends():
    net = random_network(7, n=200)
    params_ref = SkeletonParams(backend="reference")
    idx = compute_indices(net, params_ref)
    sites = find_critical_nodes(net, idx, params_ref)
    vor_ref = build_voronoi(net, sites, params_ref)
    vor_vec = build_voronoi(net, sites, SkeletonParams(backend="vectorized"))
    assert vor_vec.cell_of == vor_ref.cell_of
    assert vor_vec.segment_nodes == vor_ref.segment_nodes
    assert vor_vec.voronoi_nodes == vor_ref.voronoi_nodes
    assert vor_vec.records == vor_ref.records


def test_disconnected_and_isolated_nodes():
    # Two explicit triangles plus an isolated node.
    adjacency = [[1, 2], [0, 2], [0, 1], [4, 5], [3, 5], [3, 4], []]
    from repro.geometry.primitives import Point

    positions = [Point(float(i), 0.0) for i in range(7)]
    net = SensorNetwork(positions, adjacency)
    engine = net.traversal()
    for k in (1, 2, 5):
        assert engine.all_khop_sizes(k).tolist() == net.k_hop_sizes(k)
    dist_ref, parent_ref = net.multi_source_distances([0, 6])
    dist_vec, parent_vec = engine.multi_source_distances([0, 6])
    assert np.array_equal(dist_ref, dist_vec)
    assert np.array_equal(parent_ref, parent_vec)
    assert dist_vec[0, 3] == UNREACHED  # other component
    assert dist_vec[1].tolist() == [UNREACHED] * 6 + [0]  # isolated source
    values = [1.0] * 7
    assert engine.all_local_maxima(values, hops=1).tolist() == [
        is_locally_maximal(net, v, values, hops=1) for v in net.nodes()
    ]


def test_has_edge_bisect_matches_membership():
    net = random_network(9)
    for u in net.nodes():
        nbrs = set(net.adjacency[u])
        for v in list(nbrs)[:5]:
            assert net.has_edge(u, v)
        for v in (0, net.num_nodes - 1, u):
            assert net.has_edge(u, v) == (v in nbrs)


def test_compute_khop_sizes_backend_switch():
    net = random_network(4)
    ref = compute_khop_sizes(net, 3, backend="reference")
    vec = compute_khop_sizes(net, 3, backend="vectorized")
    assert ref == vec


def test_params_validate_backend():
    with pytest.raises(ValueError):
        SkeletonParams(backend="gpu")
    with pytest.raises(ValueError):
        SkeletonParams(traversal_batch_width=0)


def test_engine_batch_width_boundaries():
    net = random_network(2, n=50)
    ref = net.k_hop_sizes(4)
    for width in (1, 7, 50, 4096):
        engine = net.traversal(batch_width=width)
        assert engine.all_khop_sizes(4).tolist() == ref
    with pytest.raises(ValueError):
        net.traversal(batch_width=0)


# -- PR 5 kernels: hop_distances / min_hop_distance / reconstruct_paths --


@pytest.mark.parametrize("seed", SEEDS)
def test_hop_distances_match_bfs_oracle(seed):
    for net in network_grid(seed):
        engine = net.traversal()
        rng = random.Random(seed + 17)
        sources = rng.sample(range(net.num_nodes), 7)  # deliberately unsorted
        dist = engine.hop_distances(sources)
        assert dist.shape == (7, net.num_nodes)
        for i, src in enumerate(sources):
            ref = net.bfs_distances(src)
            for node in net.nodes():
                expect = ref.get(node, UNREACHED) if isinstance(ref, dict) \
                    else ref[node]
                assert dist[i, node] == expect


@pytest.mark.parametrize("seed", SEEDS)
def test_min_hop_distance_matches_merged_wave(seed):
    for net in network_grid(seed):
        engine = net.traversal()
        rng = random.Random(seed + 3)
        sources = sorted(rng.sample(range(net.num_nodes), 9))
        merged = engine.min_hop_distance(sources)
        per_source = engine.hop_distances(sources)
        for node in net.nodes():
            cols = [int(per_source[i, node]) for i in range(len(sources))
                    if per_source[i, node] != UNREACHED]
            expect = min(cols) if cols else UNREACHED
            assert merged[node] == expect
        for src in sources:
            assert merged[src] == 0


def test_min_hop_distance_no_sources():
    net = random_network(1, n=40)
    merged = net.traversal().min_hop_distance([])
    assert np.all(merged == UNREACHED)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_reconstruct_paths_match_path_to_source(seed):
    net = random_network(seed)
    engine = net.traversal()
    rng = random.Random(seed)
    sites = sorted(rng.sample(range(net.num_nodes), 5))
    dist, parent = engine.multi_source_distances(sites)
    for si in range(len(sites)):
        reached = [v for v in net.nodes() if dist[si, v] != UNREACHED]
        targets = rng.sample(reached, min(40, len(reached)))
        paths = engine.reconstruct_paths(parent[si], targets)
        assert len(paths) == len(targets)
        for node, path in zip(targets, paths):
            assert path == net.path_to_source(parent[si], node)
