"""The parallel executor and its determinism contract (repro.perf.runner).

Worker-count resolution, serial/parallel bit-identity of ``map`` and
``run_keyed``, the task-context plumbing, and the end-to-end contract on
real runners: ``run_fig4_scenarios`` and the figure suite produce
row-identical reports serially, with ``jobs=2``, and against a cold or
warm artifact cache.
"""

import os

import pytest

from repro.experiments import run_fig1_pipeline, run_fig4_scenarios
from repro.experiments.suite import run_figure_suite, suite_shards
from repro.observability import Tracer, build_metrics
from repro.perf import (
    ArtifactCache,
    ParallelRunner,
    effective_jobs,
    resolve_jobs,
    set_task_context,
    task_context,
)

SCALE = 0.1  # keep the end-to-end parity runs quick
FIG4_SUBSET = ["window", "one_hole"]  # two scenarios: parity, not coverage


def _square(x):  # module-level: must pickle into pool workers
    return x * x


def _context_probe(config):
    cache, _tracer = task_context(config.get("cache_dir"))
    if cache is None:
        return None
    return cache.get_or_build("probe", (config["key"],),
                              lambda: f"built-{config['key']}")


# -- worker-count resolution ----------------------------------------------


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_auto_detect(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_effective_jobs_defaults_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        # A runner that was not asked for parallelism must not fork.
        assert effective_jobs(None) == 1
        assert effective_jobs(4) == 4
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert effective_jobs(None) == 2


# -- ParallelRunner -------------------------------------------------------


class TestParallelRunner:
    def test_serial_and_parallel_identical(self):
        configs = list(range(20))
        serial = ParallelRunner(1).map(_square, configs)
        parallel = ParallelRunner(2).map(_square, configs)
        assert serial == parallel == [x * x for x in configs]

    def test_map_preserves_config_order(self):
        # Uneven work sizes: completion order != submission order.
        configs = [2000, 1, 1500, 2, 900]
        assert ParallelRunner(3).map(_square, configs) == \
            [x * x for x in configs]

    def test_single_config_runs_inline(self):
        assert ParallelRunner(8).map(_square, [3]) == [9]

    def test_run_keyed_sorts_by_key(self):
        items = [(("b", 1), 2), (("a", 0), 3), (("a", 1), 4)]
        out = ParallelRunner(1).run_keyed(_square, items)
        assert out == [(("a", 0), 9), (("a", 1), 16), (("b", 1), 4)]


# -- task context ---------------------------------------------------------


class TestTaskContext:
    def test_set_and_restore(self):
        cache, tracer = ArtifactCache(), Tracer(record_events=False)
        previous = set_task_context(cache, tracer)
        try:
            assert task_context() == (cache, tracer)
        finally:
            set_task_context(*previous)
        assert task_context() == previous

    def test_cache_dir_fallback_rebuilds_disk_cache(self, tmp_path):
        # The spawn-worker path: no inherited context, only a cache_dir.
        ArtifactCache(disk_dir=tmp_path).get_or_build(
            "probe", ("k",), lambda: "warmed")
        previous = set_task_context(None, None)
        try:
            value = _context_probe({"cache_dir": str(tmp_path), "key": "k"})
        finally:
            set_task_context(*previous)
        assert value == "warmed"  # served from the shared disk tier

    def test_workers_share_disk_tier(self, tmp_path):
        configs = [{"cache_dir": str(tmp_path), "key": i % 2}
                   for i in range(6)]
        results = ParallelRunner(2).map(_context_probe, configs)
        assert results == ["built-0", "built-1"] * 3


# -- end-to-end determinism on real runners -------------------------------


class TestRunnerParity:
    @pytest.fixture(scope="class")
    def reference(self):
        return run_fig4_scenarios(scale=SCALE, names=FIG4_SUBSET)

    def test_fig4_parallel_bit_identical(self, reference):
        parallel = run_fig4_scenarios(scale=SCALE, names=FIG4_SUBSET, jobs=2)
        assert parallel.rows == reference.rows
        assert parallel.notes == reference.notes

    def test_fig4_cached_bit_identical_cold_and_warm(self, reference, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cold = run_fig4_scenarios(scale=SCALE, names=FIG4_SUBSET, cache=cache)
        tracer = Tracer(record_events=False)
        warm = run_fig4_scenarios(scale=SCALE, names=FIG4_SUBSET,
                                  cache=cache, tracer=tracer)
        assert cold.rows == warm.rows == reference.rows
        report = build_metrics(tracer)
        assert report.cache_hit_rate >= 0.8  # acceptance: warm re-run
        assert report.total_cache_misses == 0

    def test_fig4_cached_parallel_bit_identical(self, reference, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        parallel = run_fig4_scenarios(scale=SCALE, names=FIG4_SUBSET,
                                      jobs=2, cache=cache)
        assert parallel.rows == reference.rows


class TestSuite:
    def test_shards_cover_selected_runners_in_order(self):
        shards = suite_shards(("fig1", "fig4"))
        assert [runner for _, runner, _ in shards] == ["fig1"] + ["fig4"] * 10
        keys = [key for key, _, _ in shards]
        assert keys == sorted(keys)

    def test_unknown_runner_rejected(self):
        with pytest.raises(ValueError, match="unknown suite runner"):
            suite_shards(("fig1", "nope"))

    def test_suite_merge_matches_direct_runner(self):
        (merged,) = run_figure_suite(scale=SCALE, runners=["fig1"])
        direct = run_fig1_pipeline(scale=SCALE)
        assert merged.rows == direct.rows
        assert merged.notes == direct.notes

    def test_suite_parallel_and_cached_identical(self, tmp_path):
        serial = run_figure_suite(scale=SCALE, runners=["fig1", "fig6"])
        cache = ArtifactCache(disk_dir=tmp_path)
        parallel = run_figure_suite(scale=SCALE, runners=["fig1", "fig6"],
                                    jobs=2, cache=cache)
        assert [r.rows for r in parallel] == [r.rows for r in serial]
        assert [r.notes for r in parallel] == [r.notes for r in serial]
