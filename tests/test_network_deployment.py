"""Unit tests for deployment strategies."""

import random

import pytest

from repro.geometry import make_field
from repro.network.deployment import (
    grid_deployment,
    skewed_deployment,
    split_keep_probability,
    thinned,
    uniform_deployment,
)


@pytest.fixture(scope="module")
def field():
    return make_field("rectangle")  # 100 x 40


class TestUniform:
    def test_count(self, field):
        assert len(uniform_deployment(field, 100, rng=random.Random(1))) == 100

    def test_membership(self, field):
        points = uniform_deployment(field, 100, rng=random.Random(1))
        assert all(field.contains(p) for p in points)


class TestGrid:
    def test_grid_regularity(self, field):
        points = grid_deployment(field, spacing=5.0)
        assert len(points) == 20 * 8

    def test_jitter_keeps_membership(self, field):
        points = grid_deployment(field, spacing=5.0, jitter=2.0,
                                 rng=random.Random(2))
        assert all(field.contains(p) for p in points)


class TestThinning:
    def test_keep_all(self, field):
        base = uniform_deployment(field, 50, rng=random.Random(3))
        assert thinned(base, lambda p: 1.0, rng=random.Random(0)) == base

    def test_keep_none(self, field):
        base = uniform_deployment(field, 50, rng=random.Random(3))
        assert thinned(base, lambda p: 0.0, rng=random.Random(0)) == []

    def test_probability_out_of_range_raises(self, field):
        base = uniform_deployment(field, 5, rng=random.Random(3))
        with pytest.raises(ValueError):
            thinned(base, lambda p: 1.5, rng=random.Random(0))

    def test_expected_fraction(self, field):
        base = uniform_deployment(field, 4000, rng=random.Random(3))
        kept = thinned(base, lambda p: 0.5, rng=random.Random(0))
        assert 0.45 * len(base) < len(kept) < 0.55 * len(base)


class TestSplitKeep:
    def test_split_along_x(self, field):
        keep = split_keep_probability(field, axis="x", fraction=0.5,
                                      low_probability=0.2, high_probability=0.9)
        from repro.geometry.primitives import Point

        assert keep(Point(10, 20)) == 0.2
        assert keep(Point(90, 20)) == 0.9

    def test_split_along_y(self, field):
        keep = split_keep_probability(field, axis="y", fraction=0.25)
        from repro.geometry.primitives import Point

        assert keep(Point(50, 5)) == 0.65
        assert keep(Point(50, 30)) == 1.0

    def test_invalid_axis(self, field):
        with pytest.raises(ValueError):
            split_keep_probability(field, axis="z")

    def test_invalid_fraction(self, field):
        with pytest.raises(ValueError):
            split_keep_probability(field, fraction=0.0)


class TestSkewed:
    def test_skew_produces_density_imbalance(self, field):
        points = skewed_deployment(field, 4000, axis="x", fraction=0.5,
                                   low_probability=0.4, rng=random.Random(5))
        left = sum(1 for p in points if p.x < 50)
        right = len(points) - left
        assert left < 0.75 * right

    def test_skewed_subset_of_field(self, field):
        points = skewed_deployment(field, 500, rng=random.Random(5))
        assert all(field.contains(p) for p in points)
