"""Tests for the experiment harness and runners (small scale)."""

import pytest

from repro.experiments import (
    ALL_RUNNERS,
    ExperimentReport,
    run_fig1_pipeline,
    run_fig3_byproducts,
    run_sec5b_parameters,
    run_thm5_complexity,
    scaled_nodes,
)

SCALE = 0.15  # keep runners quick in unit tests


class TestHarness:
    def test_scaled_nodes(self):
        assert scaled_nodes(1000, 0.5) == 500
        assert scaled_nodes(100, 0.1) == 150  # floor

    def test_scaled_nodes_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_nodes(1000, 0.0)

    def test_report_table_rendering(self):
        report = ExperimentReport("E-X", "demo")
        report.add_row(a=1, b=2.5, c="x", d=True)
        report.add_note("hello")
        table = report.to_table()
        assert "E-X" in table
        assert "2.500" in table
        assert "yes" in table
        assert "note: hello" in table

    def test_columns_union(self):
        report = ExperimentReport("E-X", "demo")
        report.add_row(a=1)
        report.add_row(b=2)
        assert report.columns() == ["a", "b"]


class TestRunners:
    def test_registry_complete(self):
        assert set(ALL_RUNNERS) == {
            "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "thm5", "sec5b", "baselines", "ablations", "faults", "async",
            "shard", "resilience",
        }

    def test_fig1_rows(self):
        report = run_fig1_pipeline(scale=SCALE)
        metrics = {row["stage_metric"] for row in report.rows}
        assert {"critical_nodes", "coarse_nodes", "final_nodes"} <= metrics

    def test_fig3_reports_byproducts(self):
        report = run_fig3_byproducts(scale=SCALE)
        metrics = {row["metric"]: row["value"] for row in report.rows}
        assert metrics["segments"] > 0
        assert 0 <= metrics["boundary_precision"] <= 1

    def test_thm5_scaling_notes(self):
        report = run_thm5_complexity(scale=SCALE, sizes=[200, 400])
        assert len(report.rows) == 2
        assert any("broadcasts ~ n^" in note for note in report.notes)

    def test_sec5b_parameter_grid(self):
        report = run_sec5b_parameters(scale=SCALE, values=[3, 4])
        assert [row["k"] for row in report.rows] == [3, 4]
        for row in report.rows:
            assert row["connected"]


class TestShardRunner:
    def test_shard_equivalence_rows(self):
        from repro.experiments import run_shard_equivalence

        report = run_shard_equivalence(scale=SCALE, names=["window"],
                                       grids=["1x1", "2x2"])
        assert [row["grid"] for row in report.rows] == ["1x1", "2x2"]
        assert all(row["identical"] for row in report.rows)
        assert all(row["mismatches"] == 0 for row in report.rows)

    def test_shard_is_a_suite_runner(self):
        from repro.experiments.suite import SUITE_RUNNERS, suite_shards

        assert "shard" in SUITE_RUNNERS
        shards = suite_shards(["shard"])
        assert len(shards) >= 3  # one per default scenario
