"""Event-driven runtime: latency models, the event loop, convergence
detection, timers under crashes, and partition discovery."""

import pytest

from repro.geometry.primitives import Point
from repro.network import UnitDiskRadio, build_network
from repro.runtime import (
    AsyncProfile,
    AsyncScheduler,
    CrashWindow,
    FaultPlan,
    LatencyModel,
    NeighborhoodGossipProtocol,
    RetryPolicy,
    SeqWindow,
    SynchronousScheduler,
    live_components,
)


def chain(n):
    positions = [Point(float(i), 0.0) for i in range(n)]
    return build_network(positions, radio=UnitDiskRadio(1.1))


def gossip_async(network, k=3, latency=None, plan=None, policy=None, **run_kw):
    sched = AsyncScheduler(
        network, lambda v: NeighborhoodGossipProtocol(v, k=k),
        latency=latency, fault_plan=plan, retry_policy=policy,
    )
    stats = sched.run(**run_kw)
    return sched, stats


class TestLatencyModel:
    @pytest.mark.parametrize("kwargs", [
        dict(kind="gaussian"),
        dict(base=0.0),
        dict(base=-1.0),
        dict(kind="uniform", jitter=-0.5),
        dict(kind="fixed", jitter=0.5),
        dict(kind="heavy_tail", jitter=1.0, tail_alpha=0.0),
        dict(kind="heavy_tail", jitter=1.0, tail_cap=0.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LatencyModel(**kwargs)

    def test_zero_jitter_normalises_to_fixed(self):
        model = LatencyModel.uniform_jitter(0.0)
        assert model.kind == "fixed" and model.is_degenerate

    def test_fixed_is_degenerate(self):
        model = LatencyModel.fixed(base=2.0)
        assert model.is_degenerate
        assert model.max_delay == 2.0
        assert all(model.delay(a, b, s) == 2.0
                   for a in range(3) for b in range(3) for s in range(5))

    def test_uniform_bounds_and_determinism(self):
        model = LatencyModel.uniform_jitter(2.0, base=1.0, seed=5)
        draws = [model.delay(0, 1, s) for s in range(200)]
        assert all(1.0 <= d <= 3.0 for d in draws)
        assert len(set(draws)) > 100  # actually jittered
        assert draws == [model.delay(0, 1, s) for s in range(200)]
        assert not model.is_degenerate
        assert model.max_delay == 3.0

    def test_links_decorrelated(self):
        model = LatencyModel.uniform_jitter(2.0, seed=5)
        assert model.delay(0, 1, 7) != model.delay(1, 0, 7)

    def test_heavy_tail_bounded_by_cap(self):
        model = LatencyModel.heavy_tail(1.0, base=1.0, seed=5, tail_cap=4.0)
        draws = [model.delay(0, 1, s) for s in range(500)]
        assert all(1.0 <= d <= model.max_delay for d in draws)
        assert model.max_delay == (1.0 + 1.0) * 4.0
        # The tail actually straggles: some draw far beyond the uniform
        # window of the same scale.
        assert max(draws) > 2.0


class TestAsyncProfile:
    @pytest.mark.parametrize("kwargs", [
        dict(grace=-0.1),
        dict(backoff=0.9),
        dict(correction_budget=-1),
        dict(aggregation_delay=-0.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AsyncProfile(**kwargs)


class TestSeqWindow:
    def test_duplicate_inside_window(self):
        window = SeqWindow(4)
        assert window.add(7) == (True, 0)
        assert window.add(7) == (False, 0)
        assert len(window) == 1

    def test_eviction_slides_oldest_out(self):
        window = SeqWindow(2)
        assert window.add(1) == (True, 0)
        assert window.add(2) == (True, 0)
        assert window.add(3) == (True, 1)  # 1 evicted
        assert len(window) == 2
        # The evicted seq is forgotten: it reads as fresh again.
        assert window.add(1) == (True, 1)


class TestEventLoop:
    def test_zero_jitter_gossip_matches_synchronous(self):
        network = chain(7)
        sched, stats = gossip_async(network, k=3)
        sync = SynchronousScheduler(
            network, lambda v: NeighborhoodGossipProtocol(v, k=3)
        )
        sync_stats = sync.run()
        assert [p.known for p in sched.protocols] == \
            [p.known for p in sync.protocols]
        assert stats.broadcasts == sync_stats.broadcasts
        assert stats.corrections == 0

    def test_convergence_report(self):
        sched, stats = gossip_async(chain(7), k=3)
        report = stats.convergence
        assert stats.quiesced and report.quiesced
        # The k-th wavefront hop lands at virtual time k and nothing is
        # transmitted after it.
        assert report.virtual_time == 3.0
        assert report.deliveries > 0
        assert report.events >= report.deliveries
        assert report.max_outstanding > 0
        assert not report.partitioned
        # Deficit accounting settled everywhere.
        assert all(d == 0 for d in sched._deficit.values())

    def test_deadline_raise(self):
        with pytest.raises(RuntimeError, match="quiesce"):
            gossip_async(chain(8), k=7, deadline=2.0)

    def test_deadline_return_partial(self):
        sched, stats = gossip_async(
            chain(8), k=7, deadline=2.0, deadline_action="return_partial"
        )
        assert not stats.quiesced
        assert not stats.convergence.quiesced
        assert stats.convergence.virtual_time <= 2.0
        # Partial state is still the first two hops of knowledge.
        assert sched.protocols[0].known >= {0, 1}

    def test_max_events_budget(self):
        _, stats = gossip_async(
            chain(8), k=7, max_events=3, deadline_action="return_partial"
        )
        assert not stats.quiesced

    def test_invalid_deadline_action(self):
        with pytest.raises(ValueError):
            gossip_async(chain(3), k=1, deadline_action="abort")

    def test_negative_timer_delay_rejected(self):
        sched = AsyncScheduler(
            chain(3), lambda v: NeighborhoodGossipProtocol(v, k=1)
        )
        with pytest.raises(ValueError):
            sched.schedule_timer(0, -1.0, "flush")

    def test_jittered_gossip_still_exact(self):
        # Reordering may cost corrections but never coverage: every node
        # still learns exactly its k-hop neighbourhood.
        network = chain(9)
        latency = LatencyModel.uniform_jitter(1.5, seed=11)
        sched, stats = gossip_async(network, k=3, latency=latency)
        assert stats.quiesced
        for v in network.nodes():
            truth = {u for u in network.nodes() if abs(u - v) <= 3}
            assert sched.protocols[v].known == truth

    def test_corrections_not_counted_as_broadcasts(self):
        network = chain(9)
        latency = LatencyModel.uniform_jitter(1.5, seed=11)
        _, stats = gossip_async(network, k=3, latency=latency)
        # The paper's per-node bound (≤ k algorithmic broadcasts) holds
        # even when repairs happened.
        assert max(stats.broadcasts_per_node.values()) <= 3
        sync_stats = SynchronousScheduler(
            network, lambda v: NeighborhoodGossipProtocol(v, k=3)
        ).run()
        assert stats.broadcasts == sync_stats.broadcasts


class TestAsyncFaults:
    def test_retry_recovers_from_drops(self):
        network = chain(6)
        plan = FaultPlan(seed=3, drop_probability=0.3)
        policy = RetryPolicy(max_retries=8)
        sched, stats = gossip_async(network, k=3, plan=plan, policy=policy)
        assert stats.retries > 0
        for v in network.nodes():
            truth = {u for u in network.nodes() if abs(u - v) <= 3}
            assert sched.protocols[v].known == truth

    def test_crashed_sender_exhausts_retry_budget(self):
        # A permanently crashed sender with no retries left loses the whole
        # frame: one drop per unreachable neighbour (the satellite-4 path).
        network = chain(3)
        plan = FaultPlan(crashes={1: CrashWindow(start=0)})
        policy = RetryPolicy(max_retries=0)
        sched, stats = gossip_async(network, k=2, plan=plan, policy=policy)
        # Node 1's own announcement (2 neighbours) plus each endpoint's
        # frame addressed only to the dead centre.
        assert stats.drops == 4
        assert stats.retries == 0
        assert sched.protocols[0].known == {0}
        assert sched.protocols[2].known == {2}

    def test_recoverable_crash_defers_timer(self):
        # A timer due inside a crash window fires after recovery instead of
        # being lost; the node still converges.
        network = chain(5)
        plan = FaultPlan(crashes={2: CrashWindow(start=1, end=4)})
        policy = RetryPolicy(max_retries=8)
        sched = AsyncScheduler(
            network,
            lambda v: NeighborhoodGossipProtocol(v, k=2, aggregation_delay=0.5),
            fault_plan=plan, retry_policy=policy,
        )
        stats = sched.run()
        assert stats.quiesced
        assert sched.protocols[2].known == {0, 1, 2, 3, 4}

    def test_permanent_crash_discards_timer(self):
        network = chain(5)
        plan = FaultPlan(crashes={2: CrashWindow(start=1)})
        policy = RetryPolicy(max_retries=2)
        sched = AsyncScheduler(
            network,
            lambda v: NeighborhoodGossipProtocol(v, k=2, aggregation_delay=0.5),
            fault_plan=plan, retry_policy=policy,
        )
        stats = sched.run()
        # The run still quiesces: the dead node's pending flush timer is
        # dropped rather than rescheduled forever.
        assert stats.quiesced
        assert stats.convergence.partitioned


class TestLiveComponents:
    def test_no_plan_single_component(self):
        network = chain(5)
        assert live_components(network, None) == [[0, 1, 2, 3, 4]]

    def test_recoverable_crash_does_not_split(self):
        network = chain(5)
        plan = FaultPlan(crashes={2: CrashWindow(start=0, end=10)})
        assert live_components(network, plan) == [[0, 1, 2, 3, 4]]

    def test_permanent_crash_splits_largest_first(self):
        network = chain(6)
        plan = FaultPlan(crashes={2: CrashWindow(start=0)})
        assert live_components(network, plan) == [[3, 4, 5], [0, 1]]


class TestSynchronousDeadlineAction:
    def test_return_partial_flags_quiesced(self):
        sched = SynchronousScheduler(
            chain(8), lambda v: NeighborhoodGossipProtocol(v, k=7)
        )
        stats = sched.run(max_rounds=2, deadline_action="return_partial")
        assert not stats.quiesced
        assert sched.protocols[0].known >= {0, 1}

    def test_raise_is_default(self):
        sched = SynchronousScheduler(
            chain(8), lambda v: NeighborhoodGossipProtocol(v, k=7)
        )
        with pytest.raises(RuntimeError, match="quiesce"):
            sched.run(max_rounds=2)

    def test_invalid_action_rejected(self):
        sched = SynchronousScheduler(
            chain(3), lambda v: NeighborhoodGossipProtocol(v, k=1)
        )
        with pytest.raises(ValueError):
            sched.run(deadline_action="abort")
