"""The resilience layer: supervised retry, speculation, degradation.

Covers the deterministic fault plan (seeded kills, delays, jitter), the
:class:`ResilientRunner`'s serial and parallel supervision paths (retry
with backoff, budget exhaustion, pool-rebuild after a hard worker death,
straggler speculation), the determinism contract (supervised == plain,
bit-identical, when no faults fire), and the graceful-degradation merge
in :mod:`repro.shard` with its :class:`DegradedReport` accounting.
"""

import functools
import os
import time

import pytest

from repro.core import SkeletonParams, extract_skeleton
from repro.experiments import scaled_nodes
from repro.network import get_scenario
from repro.observability import Tracer, build_metrics
from repro.resilience import (
    DegradedReport,
    ExecutorFaultPlan,
    InjectedWorkerCrash,
    ResilientRunner,
    SupervisorPolicy,
    TaskFailedError,
    grid_seams,
)
from repro.shard import assert_equivalent, run_sharded

FAST = SupervisorPolicy(backoff_base=0.0)


# -- module-level task functions (must pickle into pool workers) ----------


def _square(config):
    return config * config


def _slow_square(config):
    # Task 0 stalls long enough to trip a tight straggler deadline.
    if config == 0:
        time.sleep(0.4)
    return config * config


def _hard_exit(config):
    if config == 0:
        os._exit(1)  # kills the worker process, poisons the pool
    return config * config


def _always_raise(config):
    raise ValueError(f"bad config {config}")


# -- ExecutorFaultPlan ----------------------------------------------------


class TestFaultPlan:
    def test_null_plan_never_fires(self):
        plan = ExecutorFaultPlan()
        assert plan.is_null
        assert not any(plan.kills("s", t, a)
                       for t in range(20) for a in range(3))
        assert plan.delay("s", 0, 0) == 0.0

    def test_explicit_kills_cover_first_attempts_only(self):
        plan = ExecutorFaultPlan(kill_tasks={("s", 2): 2})
        assert plan.kills("s", 2, 0) and plan.kills("s", 2, 1)
        assert not plan.kills("s", 2, 2)
        assert not plan.kills("other", 2, 0)
        assert not plan.kills("s", 3, 0)

    def test_stochastic_kills_deterministic_per_seed(self):
        plan = ExecutorFaultPlan(seed=7, kill_probability=0.5)
        draws = [plan.kills("s", t, 0) for t in range(64)]
        again = [ExecutorFaultPlan(seed=7, kill_probability=0.5)
                 .kills("s", t, 0) for t in range(64)]
        other = [ExecutorFaultPlan(seed=8, kill_probability=0.5)
                 .kills("s", t, 0) for t in range(64)]
        assert draws == again
        assert draws != other
        assert 10 < sum(draws) < 54  # roughly half fire

    def test_delay_applies_to_first_attempt_only(self):
        plan = ExecutorFaultPlan(delay_tasks={("s", 1): 0.25})
        assert plan.delay("s", 1, 0) == 0.25
        assert plan.delay("s", 1, 1) == 0.0  # retries/speculation escape

    def test_backoff_jitter_in_unit_interval_and_seeded(self):
        plan = ExecutorFaultPlan(seed=3)
        draw = plan.backoff_jitter("s", 4, 1)
        assert 0.0 <= draw < 1.0
        assert draw == ExecutorFaultPlan(seed=3).backoff_jitter("s", 4, 1)
        assert draw != ExecutorFaultPlan(seed=4).backoff_jitter("s", 4, 1)


# -- SupervisorPolicy -----------------------------------------------------


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            SupervisorPolicy(straggler_percentile=2.0)

    def test_backoff_grows_exponentially(self):
        policy = SupervisorPolicy(backoff_base=0.01, backoff_factor=2.0,
                                  backoff_jitter=0.0)
        waits = [policy.backoff_seconds("s", 0, a) for a in (1, 2, 3)]
        assert waits == [0.01, 0.02, 0.04]

    def test_backoff_jitter_is_deterministic(self):
        policy = SupervisorPolicy(backoff_base=0.01, backoff_jitter=0.5)
        a = policy.backoff_seconds("s", 0, 1)
        assert a == policy.backoff_seconds("s", 0, 1)
        assert 0.01 <= a <= 0.015
        plan = ExecutorFaultPlan(seed=99)
        b = policy.backoff_seconds("s", 0, 1, plan)
        assert b == policy.backoff_seconds("s", 0, 1, plan)


# -- ResilientRunner: serial path -----------------------------------------


class TestSerialSupervision:
    def test_clean_run_matches_plain_map(self):
        runner = ResilientRunner(jobs=1, policy=FAST)
        outcomes = runner.map(_square, [1, 2, 3], stage="s")
        assert [o.result for o in outcomes] == [1, 4, 9]
        assert all(o.ok and o.attempts == 1 and not o.retries
                   for o in outcomes)

    def test_transient_kill_retries_to_success(self):
        plan = ExecutorFaultPlan(kill_tasks={("s", 1): 2})
        runner = ResilientRunner(jobs=1, policy=FAST, fault_plan=plan)
        outcomes = runner.map(_square, [1, 2, 3], stage="s")
        assert [o.result for o in outcomes] == [1, 4, 9]
        assert outcomes[1].attempts == 3 and outcomes[1].retries == 2
        assert len(outcomes[1].errors) == 2
        assert runner.stage_counters["s"]["retries"] == 2

    def test_budget_exhaustion_reports_failure(self):
        plan = ExecutorFaultPlan(kill_tasks={("s", 0): 99})
        runner = ResilientRunner(jobs=1, policy=FAST, fault_plan=plan)
        outcomes = runner.map(_square, [1, 2], stage="s")
        assert not outcomes[0].ok and outcomes[1].ok
        assert outcomes[0].attempts == FAST.max_attempts
        assert "InjectedWorkerCrash" in outcomes[0].errors[-1]
        assert runner.stage_counters["s"]["failures"] == 1

    def test_map_results_raises_on_failure(self):
        plan = ExecutorFaultPlan(kill_tasks={("s", 0): 99})
        runner = ResilientRunner(jobs=1, policy=FAST, fault_plan=plan)
        with pytest.raises(TaskFailedError, match="task 0 after 3 attempts"):
            runner.map_results(_square, [1, 2], stage="s")

    def test_real_exceptions_also_supervised(self):
        runner = ResilientRunner(jobs=1, policy=FAST)
        outcomes = runner.map(_always_raise, [5], stage="s")
        assert not outcomes[0].ok
        assert all("ValueError: bad config 5" in e
                   for e in outcomes[0].errors)


# -- ResilientRunner: parallel path ---------------------------------------


class TestParallelSupervision:
    def test_clean_run_preserves_config_order(self):
        runner = ResilientRunner(jobs=2, policy=FAST)
        outcomes = runner.map(_square, list(range(8)), stage="s")
        assert [o.result for o in outcomes] == [i * i for i in range(8)]

    def test_transient_kill_retries_to_success(self):
        plan = ExecutorFaultPlan(kill_tasks={("s", 1): 2})
        tracer = Tracer(record_events=False)
        runner = ResilientRunner(jobs=2, policy=FAST, fault_plan=plan,
                                 tracer=tracer)
        outcomes = runner.map(_square, [1, 2, 3, 4], stage="s")
        assert [o.result for o in outcomes] == [1, 4, 9, 16]
        assert outcomes[1].retries == 2
        assert build_metrics(tracer).task_retries == {"s": 2}

    def test_budget_exhaustion_reports_failure(self):
        plan = ExecutorFaultPlan(kill_tasks={("s", 0): 99})
        tracer = Tracer(record_events=False)
        runner = ResilientRunner(jobs=2, policy=FAST, fault_plan=plan,
                                 tracer=tracer)
        outcomes = runner.map(_square, [1, 2, 3], stage="s")
        assert not outcomes[0].ok
        assert [o.result for o in outcomes[1:]] == [4, 9]
        assert build_metrics(tracer).task_failures == {"s": 1}

    def test_hard_worker_death_rebuilds_pool(self):
        # os._exit kills the worker: the pool breaks, the supervisor must
        # rebuild it and still resolve every task (task 0 fails after its
        # budget — _hard_exit dies on every attempt — others succeed).
        runner = ResilientRunner(jobs=2, policy=FAST)
        outcomes = runner.map(_hard_exit, [0, 1, 2, 3], stage="s")
        assert not outcomes[0].ok
        assert any("BrokenProcessPool" in e for e in outcomes[0].errors)
        assert [o.result for o in outcomes if o.index > 0] == [1, 4, 9]

    def test_straggler_speculation_fires(self):
        policy = SupervisorPolicy(
            backoff_base=0.0, straggler_min_samples=3,
            straggler_min_seconds=0.05, straggler_factor=1.5,
            poll_seconds=0.01)
        tracer = Tracer(record_events=False)
        runner = ResilientRunner(jobs=2, policy=policy, tracer=tracer)
        outcomes = runner.map(_slow_square, list(range(8)), stage="s")
        assert [o.result for o in outcomes] == [i * i for i in range(8)]
        assert outcomes[0].speculated
        assert build_metrics(tracer).task_speculations == {"s": 1}

    def test_speculation_can_be_disabled(self):
        policy = SupervisorPolicy(
            backoff_base=0.0, speculate=False, straggler_min_samples=3,
            straggler_min_seconds=0.05, straggler_factor=1.5,
            poll_seconds=0.01)
        runner = ResilientRunner(jobs=2, policy=policy)
        outcomes = runner.map(_slow_square, list(range(8)), stage="s")
        assert not any(o.speculated for o in outcomes)


# -- degradation primitives -----------------------------------------------


class TestDegradePrimitives:
    def test_grid_seams_interior_tile(self):
        assert grid_seams((3, 3), [4]) == ((1, 4), (3, 4), (4, 5), (4, 7))

    def test_grid_seams_corner_and_dedup(self):
        assert grid_seams((2, 2), [0, 1]) == ((0, 1), (0, 2), (1, 3))

    def test_grid_seams_single_tile_grid_has_none(self):
        assert grid_seams((1, 1), [0]) == ()

    def test_report_coverage_and_flags(self):
        report = DegradedReport(total_nodes=100, missing_nodes=25,
                                failed_tiles=(0,), verdict="degraded")
        assert report.coverage == pytest.approx(0.75)
        assert report.is_degraded
        assert "coverage=0.750" in report.summary()
        clean = DegradedReport(total_nodes=100, missing_nodes=0)
        assert clean.coverage == 1.0 and not clean.is_degraded


# -- graceful degradation through repro.shard -----------------------------


@functools.lru_cache(maxsize=None)
def _window_network():
    scenario = get_scenario("window")
    return scenario.build(seed=1,
                          num_nodes=scaled_nodes(scenario.num_nodes, 0.25))


@functools.lru_cache(maxsize=None)
def _window_monolithic():
    return extract_skeleton(_window_network(), SkeletonParams())


class TestShardDegradation:
    def test_supervised_no_faults_bit_identical(self):
        run = run_sharded(_window_network(), SkeletonParams(), grid="2x2",
                          supervisor=FAST)
        assert_equivalent(_window_monolithic(), run.result)
        assert run.degraded is None and not run.is_degraded
        assert set(run.supervision) == {"shard:stage1", "shard:flood",
                                        "shard:paths"}

    def test_transient_faults_recover_bit_identical(self):
        plan = ExecutorFaultPlan(kill_tasks={("shard:stage1", 0): 2,
                                             ("shard:flood", 1): 1})
        run = run_sharded(_window_network(), SkeletonParams(), grid="2x2",
                          supervisor=FAST, fault_plan=plan)
        assert_equivalent(_window_monolithic(), run.result)
        assert run.degraded is None
        assert run.supervision["shard:stage1"]["retries"] == 2
        assert run.supervision["shard:flood"]["retries"] == 1

    def test_permanent_stage1_failure_degrades(self):
        plan = ExecutorFaultPlan(kill_tasks={("shard:stage1", 0): 99})
        run = run_sharded(_window_network(), SkeletonParams(), grid="2x2",
                          supervisor=FAST, fault_plan=plan)
        report = run.degraded
        assert report is not None and report.is_degraded
        assert report.failed_tiles == (0,)
        assert 0.0 < report.coverage < 1.0
        assert report.affected_seams == ((0, 1), (0, 2))
        assert report.task_failures == {"shard:stage1": 1}
        assert report.verdict in ("pass", "degraded")
        # The partial result still carries a non-empty skeleton.
        assert run.result.skeleton.nodes

    def test_permanent_flood_failure_loses_sites(self):
        plan = ExecutorFaultPlan(kill_tasks={("shard:flood", 0): 99})
        run = run_sharded(_window_network(), SkeletonParams(), grid="2x2",
                          supervisor=FAST, fault_plan=plan)
        report = run.degraded
        assert report.lost_sites and report.coverage == 1.0
        assert not set(report.lost_sites) & set(run.result.critical_nodes)

    def test_permanent_paths_failure_drops_pairs(self):
        plan = ExecutorFaultPlan(kill_tasks={("shard:paths", 0): 99})
        run = run_sharded(_window_network(), SkeletonParams(), grid="2x2",
                          supervisor=FAST, fault_plan=plan)
        report = run.degraded
        assert report.dropped_pairs
        dropped = {frozenset(p) for p in report.dropped_pairs}
        kept = {frozenset(p) for p in run.result.coarse.pair_paths}
        assert not dropped & kept

    def test_unsupervised_failure_still_raises(self):
        # Without a supervisor the original fail-fast contract holds.
        plan = ExecutorFaultPlan(kill_tasks={("shard:stage1", 0): 99})
        policy = SupervisorPolicy(max_attempts=1, backoff_base=0.0)
        run = run_sharded(_window_network(), SkeletonParams(), grid="2x2",
                          supervisor=policy, fault_plan=plan)
        assert run.degraded is not None  # degrades, no raise
        with pytest.raises(InjectedWorkerCrash):
            # The same plan through the *plain* serial map path raises.
            from repro.resilience.supervisor import _attempt_task
            _attempt_task((_square, 2, "shard:stage1", 0, 0, plan))
