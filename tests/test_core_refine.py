"""Tests for skeleton refinement: rebuild + pruning (§III-D)."""

import pytest

from repro.core.refine import SkeletonGraph, merge_fake_loops, prune_short_branches
from repro.core.loops import Loop


def make_graph(edges):
    g = SkeletonGraph(nodes=set(), edges={frozenset(e) for e in edges})
    for e in g.edges:
        g.nodes |= e
    return g


def make_loop(nodes, fake=True):
    ordered = list(nodes)
    return Loop(
        sites=[], ordered=ordered, nodes=set(nodes),
        edges={frozenset((ordered[i], ordered[(i + 1) % len(ordered)]))
               for i in range(len(ordered))},
        is_fake=fake, witnesses=[],
    )


class TestSkeletonGraph:
    def test_cycle_rank_of_tree_is_zero(self):
        g = make_graph([(1, 2), (2, 3), (2, 4)])
        assert g.cycle_rank() == 0

    def test_cycle_rank_of_cycle_is_one(self):
        g = make_graph([(1, 2), (2, 3), (3, 1)])
        assert g.cycle_rank() == 1

    def test_connected(self):
        assert make_graph([(1, 2), (2, 3)]).is_connected()
        assert not make_graph([(1, 2), (3, 4)]).is_connected()

    def test_remove_nodes_drops_incident_edges(self):
        g = make_graph([(1, 2), (2, 3)])
        g.remove_nodes({2})
        assert g.edges == set()
        assert g.nodes == {1, 3}

    def test_add_path(self):
        g = make_graph([(1, 2)])
        g.add_path([2, 5, 6])
        assert frozenset((2, 5)) in g.edges
        assert frozenset((5, 6)) in g.edges

    def test_drop_isolated_nodes(self):
        g = make_graph([(1, 2)])
        g.nodes.add(99)
        g.drop_isolated_nodes()
        assert 99 not in g.nodes


class TestMergeFakeLoops:
    def test_disjoint_loops_stay_separate(self):
        loops = [make_loop([1, 2, 3]), make_loop([7, 8, 9])]
        groups = merge_fake_loops(loops)
        assert len(groups) == 2

    def test_overlapping_loops_merge(self):
        loops = [make_loop([1, 2, 3]), make_loop([3, 4, 5]), make_loop([5, 6, 7])]
        groups = merge_fake_loops(loops)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_genuine_loops_excluded(self):
        loops = [make_loop([1, 2, 3], fake=False), make_loop([3, 4, 5])]
        groups = merge_fake_loops(loops)
        assert len(groups) == 1
        assert groups[0][0].nodes == {3, 4, 5}


class TestPruning:
    def test_short_branch_removed(self):
        # Junction at 3 with a single-node stub 3-10; the two long arms
        # (length 2) survive a min_length of 1.
        g = make_graph([(1, 2), (2, 3), (3, 4), (4, 5), (3, 10)])
        pruned = prune_short_branches(g, min_length=1)
        assert 10 not in pruned.nodes
        assert {1, 2, 3, 4, 5} <= pruned.nodes

    def test_long_branch_kept(self):
        g = make_graph([(1, 2), (2, 3), (3, 4), (4, 5),
                        (2, 10), (10, 11), (11, 12), (12, 13)])
        pruned = prune_short_branches(g, min_length=2)
        assert 13 in pruned.nodes

    def test_bare_path_never_deleted(self):
        g = make_graph([(1, 2), (2, 3)])
        pruned = prune_short_branches(g, min_length=10)
        assert pruned.nodes == {1, 2, 3}

    def test_zero_length_is_noop(self):
        g = make_graph([(1, 2), (2, 3), (2, 10)])
        pruned = prune_short_branches(g, min_length=0)
        assert 10 in pruned.nodes

    def test_iterative_pruning(self):
        # 20 carries two stubs (21, 30); pruning them leaves 3-20 as a
        # newly short branch, which a later iteration removes too.
        g = make_graph([
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
            (3, 20), (20, 21), (20, 30),
        ])
        pruned = prune_short_branches(g, min_length=2)
        assert not {20, 21, 30} & pruned.nodes
        assert {0, 1, 2, 3, 4, 5, 6, 7} <= pruned.nodes


class TestEndToEndRefinement:
    def test_final_skeleton_connected(self, rectangle_result, annulus_result):
        assert rectangle_result.skeleton.is_connected()
        assert annulus_result.skeleton.is_connected()

    def test_rectangle_is_tree(self, rectangle_result):
        assert rectangle_result.skeleton.cycle_rank() == 0

    def test_annulus_keeps_exactly_one_cycle(self, annulus_result):
        assert annulus_result.skeleton.cycle_rank() == 1

    def test_final_skeleton_subset_of_coarse(self, rectangle_result):
        assert rectangle_result.skeleton.nodes <= rectangle_result.coarse.nodes
        assert rectangle_result.skeleton.edges <= rectangle_result.coarse.edges

    def test_genuine_loop_edges_survive(self, annulus_result):
        skeleton_edges = annulus_result.skeleton.edges
        for loop in annulus_result.loop_analysis.genuine:
            missing = [e for e in loop.edges if e not in skeleton_edges]
            assert not missing
