"""Distributed-vs-centralized equivalence and Theorem 5 message bounds."""

import pytest

from repro.core import (
    SkeletonParams,
    build_voronoi,
    compute_indices,
    find_critical_nodes,
    run_distributed_stages,
)


@pytest.fixture(scope="module")
def distributed(rectangle_network):
    return run_distributed_stages(rectangle_network, SkeletonParams())


@pytest.fixture(scope="module")
def centralized(rectangle_network):
    params = SkeletonParams()
    data = compute_indices(rectangle_network, params)
    critical = find_critical_nodes(rectangle_network, data, params)
    voronoi = build_voronoi(rectangle_network, critical, params)
    return data, critical, voronoi


class TestEquivalence:
    def test_khop_sizes_match(self, distributed, centralized):
        data, _, _ = centralized
        assert distributed.khop_sizes == data.khop_sizes

    def test_centrality_matches(self, distributed, centralized):
        data, _, _ = centralized
        for d, c in zip(distributed.centrality, data.centrality):
            assert d == pytest.approx(c)

    def test_indices_match(self, distributed, centralized):
        data, _, _ = centralized
        for d, c in zip(distributed.index, data.index):
            assert d == pytest.approx(c)

    def test_critical_nodes_match(self, distributed, centralized):
        _, critical, _ = centralized
        assert distributed.critical_nodes == critical

    def test_cell_assignment_matches(self, distributed, centralized):
        # Synchronous waves arrive in distance order, so each node's
        # nearest recorded site is its centralized cell (ties may differ
        # only between equidistant sites).
        _, _, voronoi = centralized
        agree = 0
        for v in distributed.network.nodes():
            cell = distributed.cell_of(v)
            if cell == voronoi.cell_of[v]:
                agree += 1
            else:
                # Must still be an equidistant site.
                recorded = dict(voronoi.records[v])
                assert cell in recorded
                best = min(recorded.values())
                assert recorded[cell] == best
                agree += 1
        assert agree == distributed.network.num_nodes

    def test_segment_nodes_subset_of_centralized(self, distributed, centralized):
        # The distributed flood stops waves at segment nodes, so its record
        # sets are a subset of the exact centralized ones.
        _, _, voronoi = centralized
        assert distributed.segment_nodes <= voronoi.segment_nodes


class TestTheorem5Bounds:
    def test_message_bound(self, distributed, centralized):
        params = distributed.params
        n = distributed.network.num_nodes
        bound = (params.k + params.l + params.local_max_hops + 1) * n
        assert distributed.stats.broadcasts <= bound

    def test_per_node_bound(self, distributed):
        params = distributed.params
        assert distributed.stats.max_node_broadcasts <= (
            params.k + params.l + params.local_max_hops + 1
        )

    def test_rounds_scale_sublinearly(self, rectangle_network):
        # Rounds = k + l + h + O(network radius), far below n.
        outcome = run_distributed_stages(rectangle_network)
        assert outcome.stats.rounds < rectangle_network.num_nodes / 4

    def test_message_growth_is_linear(self):
        from tests.conftest import build_test_network

        sizes = []
        for n in (200, 400):
            network = build_test_network("rectangle", n, 6.0, seed=9)
            outcome = run_distributed_stages(network)
            sizes.append((network.num_nodes, outcome.stats.broadcasts))
        (n1, m1), (n2, m2) = sizes
        # Messages per node stay flat as n doubles.
        assert m2 / n2 == pytest.approx(m1 / n1, rel=0.1)
