"""Degenerate tilings merge without error, bit-identical to monolithic.

Satellite coverage for the merge path's edge cases: grids where most
tiles own nothing (tiny clustered deployments under a coarse grid),
tiles that own nodes but elect zero critical nodes, the trivial single-
tile grid, single-node and two-node networks, and grids far finer than
the deployment.  None of these may raise, and each must reproduce the
monolithic extraction exactly.
"""

import random

import pytest

from repro.core import SkeletonParams, extract_skeleton
from repro.geometry import make_field
from repro.geometry.primitives import Point
from repro.network import UnitDiskRadio, build_network
from repro.network.deployment import uniform_deployment
from repro.shard import assert_equivalent, plan_tiles, run_sharded


def _cluster_network(n=40, seed=3):
    """Nodes packed into one corner of a large field: under a coarse grid
    most tiles own nothing."""
    field = make_field("rectangle")
    rng = random.Random(seed)
    box = field.bounding_box()
    positions = [Point(box.min_x + rng.random() * box.width * 0.22,
                       box.min_y + rng.random() * box.height * 0.22)
                 for _ in range(n)]
    return build_network(positions, radio=UnitDiskRadio(6.0), field=field,
                         rng=random.Random(seed))


def _uniform_network(n=60, seed=5):
    field = make_field("rectangle")
    rng = random.Random(seed)
    positions = uniform_deployment(field, n, rng=rng)
    return build_network(positions, radio=UnitDiskRadio(6.0), field=field,
                         rng=random.Random(seed))


class TestEmptyTiles:
    def test_clustered_deployment_leaves_tiles_empty(self):
        network = _cluster_network()
        plan = plan_tiles(network, (4, 4), SkeletonParams())
        assert any(not tile.owned for tile in plan.tiles)

    @pytest.mark.parametrize("grid", ["2x2", "4x4", "8x8"])
    def test_empty_tiles_merge_bit_identical(self, grid):
        network = _cluster_network()
        mono = extract_skeleton(network, SkeletonParams())
        run = run_sharded(network, SkeletonParams(), grid=grid)
        assert_equivalent(mono, run.result)
        assert run.degraded is None


class TestSingleTileGrid:
    def test_1x1_grid_is_the_monolithic_pipeline(self):
        network = _uniform_network()
        mono = extract_skeleton(network, SkeletonParams())
        run = run_sharded(network, SkeletonParams(), grid="1x1")
        assert_equivalent(mono, run.result)
        assert len(run.plan.tiles) == 1

    def test_1x1_grid_on_tiny_network(self):
        network = _cluster_network(n=8, seed=11)
        mono = extract_skeleton(network, SkeletonParams())
        run = run_sharded(network, SkeletonParams(), grid="1x1")
        assert_equivalent(mono, run.result)


class TestTinyNetworks:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("grid", ["1x1", "2x2", "3x3"])
    def test_near_empty_networks_merge(self, n, grid):
        field = make_field("rectangle")
        box = field.bounding_box()
        positions = [Point(box.min_x + 1.0 + i * 2.0, box.min_y + 1.0)
                     for i in range(n)]
        network = build_network(positions, radio=UnitDiskRadio(6.0),
                                field=field, rng=random.Random(0))
        mono = extract_skeleton(network, SkeletonParams())
        run = run_sharded(network, SkeletonParams(), grid=grid)
        assert_equivalent(mono, run.result)

    def test_zero_node_network(self):
        field = make_field("rectangle")
        network = build_network([], radio=UnitDiskRadio(6.0), field=field,
                                rng=random.Random(0))
        run = run_sharded(network, SkeletonParams(), grid="2x2")
        assert run.result.skeleton.nodes == set()
        assert run.degraded is None


class TestZeroCriticalTiles:
    def test_some_tiles_elect_no_sites_yet_merge_exactly(self):
        # A fine grid over a modest deployment: many owning tiles are too
        # small (or too peripheral) to elect any critical node locally.
        network = _uniform_network(n=50, seed=9)
        params = SkeletonParams()
        mono = extract_skeleton(network, params)
        run = run_sharded(network, params, grid="6x6")
        assert_equivalent(mono, run.result)
        owner_of = run.plan.owner_of
        sites_by_tile = {}
        for site in run.result.critical_nodes:
            sites_by_tile.setdefault(owner_of[site], []).append(site)
        owning_tiles = [i for i, t in enumerate(run.plan.tiles) if t.owned]
        assert len(sites_by_tile) < len(owning_tiles)  # siteless tiles exist
