"""Fault-injection runtime: determinism, recovery, crash semantics, accounting."""

import pytest

from repro.core import SkeletonParams, run_distributed_stages
from repro.geometry.primitives import Point
from repro.network import UnitDiskRadio, build_network
from repro.runtime import (
    CrashWindow,
    FaultPlan,
    NeighborhoodGossipProtocol,
    RetryPolicy,
    SynchronousScheduler,
    VoronoiFloodProtocol,
)


def chain(n):
    positions = [Point(float(i), 0.0) for i in range(n)]
    return build_network(positions, radio=UnitDiskRadio(1.1))


def gossip_run(network, k=3, plan=None, policy=None):
    sched = SynchronousScheduler(
        network, lambda v: NeighborhoodGossipProtocol(v, k=k),
        fault_plan=plan, retry_policy=policy,
    )
    stats = sched.run()
    return [frozenset(p.known) for p in sched.protocols], stats


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(drop_probability=-0.1),
        dict(drop_probability=1.0),
        dict(flap_probability=-0.1),
        dict(flap_probability=1.0),
    ])
    def test_probabilities_must_be_in_range(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_crash_window_end_after_start(self):
        with pytest.raises(ValueError):
            CrashWindow(start=5, end=5)
        with pytest.raises(ValueError):
            CrashWindow(start=-1)

    def test_retry_budget_nonnegative(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_crash_window_coverage(self):
        w = CrashWindow(start=2, end=4)
        assert [w.covers(r) for r in (1, 2, 3, 4)] == [False, True, True, False]
        assert not w.is_permanent
        assert CrashWindow(start=2).is_permanent

    def test_null_plan_detection(self):
        assert FaultPlan().is_null
        assert not FaultPlan(drop_probability=0.1).is_null
        assert not FaultPlan(crashes={0: CrashWindow(start=1)}).is_null


class TestDeterminism:
    def test_same_seed_same_outcome(self, rectangle_network):
        plan = FaultPlan(seed=11, drop_probability=0.2)
        policy = RetryPolicy(max_retries=2)
        known_a, stats_a = gossip_run(rectangle_network, plan=plan, policy=policy)
        known_b, stats_b = gossip_run(rectangle_network, plan=plan, policy=policy)
        assert known_a == known_b
        assert stats_a.summary() == stats_b.summary()

    def test_different_seed_different_faults(self, rectangle_network):
        a = FaultPlan(seed=1, drop_probability=0.2)
        b = FaultPlan(seed=2, drop_probability=0.2)
        _, stats_a = gossip_run(rectangle_network, plan=a)
        _, stats_b = gossip_run(rectangle_network, plan=b)
        assert stats_a.drops != stats_b.drops

    def test_fault_predicates_are_pure(self):
        plan = FaultPlan(seed=3, drop_probability=0.5, flap_probability=0.5)
        draws = [plan.delivers(1, 2, 7, 42) for _ in range(5)]
        assert len(set(draws)) == 1
        flaps = [plan.link_up(4, 9, 3) for _ in range(5)]
        assert len(set(flaps)) == 1
        # Symmetric link: both directions flap together.
        assert plan.link_up(4, 9, 3) == plan.link_up(9, 4, 3)

    def test_channels_are_decorrelated(self):
        # Data and ack draws with identical coordinates must differ for
        # some coordinate, or a lost frame would imply a lost ack.
        plan = FaultPlan(seed=5, drop_probability=0.5)
        differs = any(
            plan.delivers(a, b, r, s) != plan.ack_delivers(a, b, r, s)
            for a in range(4) for b in range(4) for r in range(4)
            for s in range(4)
        )
        assert differs


class TestZeroDropIdentity:
    def test_gossip_bit_identical(self, rectangle_network):
        known_plain, stats_plain = gossip_run(rectangle_network)
        plan = FaultPlan(seed=99, drop_probability=0.0)
        known_fault, stats_fault = gossip_run(
            rectangle_network, plan=plan, policy=RetryPolicy(max_retries=3)
        )
        assert known_plain == known_fault
        assert stats_fault.retries == 0
        assert stats_fault.drops == 0
        assert stats_fault.redundant_deliveries == 0
        assert stats_plain.broadcasts == stats_fault.broadcasts
        assert stats_plain.receptions == stats_fault.receptions
        assert stats_plain.rounds == stats_fault.rounds
        assert stats_plain.broadcasts_per_node == stats_fault.broadcasts_per_node
        assert stats_plain.broadcasts_per_round == stats_fault.broadcasts_per_round

    def test_distributed_stages_bit_identical(self, rectangle_network):
        plain = run_distributed_stages(rectangle_network)
        faulty = run_distributed_stages(
            rectangle_network,
            fault_plan=FaultPlan(seed=7, drop_probability=0.0),
            retry_policy=RetryPolicy(max_retries=3),
        )
        assert plain.khop_sizes == faulty.khop_sizes
        assert plain.index == faulty.index
        assert plain.critical_nodes == faulty.critical_nodes
        assert plain.site_records == faulty.site_records
        assert plain.stats.broadcasts == faulty.stats.broadcasts
        assert plain.stats.rounds == faulty.stats.rounds
        assert faulty.stats.retries == 0


class TestRetryRecovery:
    def test_retries_recover_lost_gossip(self):
        net = chain(12)
        plan = FaultPlan(seed=2, drop_probability=0.3)
        bare, bare_stats = gossip_run(net, k=11, plan=plan)
        recovered, stats = gossip_run(
            net, k=11, plan=plan, policy=RetryPolicy(max_retries=8)
        )
        complete = frozenset(range(12))
        assert bare_stats.drops > 0
        # With a generous retry budget (residual per-frame loss 0.3^9 ~ 2e-5)
        # the chain gossip completes even at 30% loss; without it, at least
        # one node misses part of the chain.
        assert all(known == complete for known in recovered)
        assert any(known != complete for known in bare)
        assert stats.retries > 0

    def test_retry_budget_bound(self, rectangle_network):
        policy = RetryPolicy(max_retries=3)
        plan = FaultPlan(seed=4, drop_probability=0.3)
        _, stats = gossip_run(rectangle_network, plan=plan, policy=policy)
        assert 0 < stats.retries <= policy.max_retries * stats.broadcasts

    def test_zero_budget_keeps_dedup_but_never_retransmits(self):
        net = chain(6)
        plan = FaultPlan(seed=8, drop_probability=0.3)
        _, stats = gossip_run(net, k=5, plan=plan, policy=RetryPolicy(max_retries=0))
        assert stats.retries == 0

    def test_ack_loss_causes_redundant_deliveries(self, rectangle_network):
        # A delivered frame whose ack is lost gets retransmitted; the
        # receiver suppresses the duplicate and counts it.
        plan = FaultPlan(seed=6, drop_probability=0.3)
        _, stats = gossip_run(
            rectangle_network, plan=plan, policy=RetryPolicy(max_retries=3)
        )
        assert stats.acks_dropped > 0
        assert stats.redundant_deliveries > 0


class TestCrashes:
    def test_permanent_crash_quiesces(self):
        net = chain(5)
        plan = FaultPlan(crashes={2: CrashWindow(start=0)})
        known, stats = gossip_run(net, k=4, plan=plan)
        # The dead middle node partitions the chain: information never
        # crosses it, and the run still terminates.
        assert 4 not in known[0]
        assert 0 not in known[4]
        assert stats.rounds < 50

    def test_crash_recovery_resumes_with_state(self):
        net = chain(5)
        plan = FaultPlan(crashes={2: CrashWindow(start=1, end=3)})
        # The gossip wave is event-driven, so frames that arrived while the
        # node was down are gone without ARQ; with retries outlasting the
        # outage, the recovered node catches up and the exchange completes.
        known, _ = gossip_run(net, k=4, plan=plan, policy=RetryPolicy(max_retries=4))
        assert all(k == frozenset(range(5)) for k in known)

    def test_crashed_node_does_not_transmit_or_receive(self):
        net = chain(3)
        plan = FaultPlan(crashes={1: CrashWindow(start=0)})
        sched = SynchronousScheduler(
            net, lambda v: VoronoiFloodProtocol(v, is_site=(v == 0), alpha=1),
            fault_plan=plan,
        )
        sched.run()
        assert sched.protocols[1].recorded_sites == {}
        # The wave cannot route around the dead relay on a chain.
        assert 0 not in sched.protocols[2].recorded_sites

    def test_distributed_run_with_crash_quiesces(self, rectangle_network):
        plan = FaultPlan(crashes={0: CrashWindow(start=0)})
        outcome = run_distributed_stages(rectangle_network, fault_plan=plan)
        assert outcome.stats.rounds < rectangle_network.num_nodes

    def test_all_nodes_crashed_yields_empty_outcome(self):
        net = chain(4)
        plan = FaultPlan(crashes={v: CrashWindow(start=0) for v in range(4)})
        outcome = run_distributed_stages(net, SkeletonParams(k=1, l=1), fault_plan=plan)
        assert outcome.critical_nodes == []
        assert outcome.stats.broadcasts == 0


class TestFlaps:
    def test_flapping_links_drop_whole_round(self):
        net = chain(8)
        plan = FaultPlan(seed=13, flap_probability=0.4)
        bare, stats = gossip_run(net, k=7, plan=plan)
        assert stats.drops > 0
        recovered, _ = gossip_run(
            net, k=7, plan=plan, policy=RetryPolicy(max_retries=6)
        )
        assert all(k == frozenset(range(8)) for k in recovered)


class TestVoronoiCorrectionUnderLoss:
    """A late shorter path on the lossy synchronous fabric must repair the
    descendants that already forwarded the stale distance (the same staleness
    the event-driven runtime produces by reordering)."""

    def _network(self):
        # Site 0 reaches node 3 two ways: the 3-hop chain 0-1-2-3 and the
        # 2-hop shortcut 0-4-3.  Node 5 hangs off 3 as a descendant.
        positions = [
            Point(0.0, 0.0), Point(1.0, 0.0), Point(2.0, 0.0),
            Point(3.0, 0.0), Point(1.5, 0.55), Point(4.0, 0.0),
        ]
        return build_network(positions, radio=UnitDiskRadio(1.6))

    def test_late_shorter_path_corrects_descendants(self):
        network = self._network()
        # The shortcut relay sleeps through the first wave: node 3 (and its
        # descendant 5) join via the long chain, then the relay recovers,
        # the retried site frame reaches it, and its shorter wave must
        # propagate as corrections.
        plan = FaultPlan(crashes={4: CrashWindow(start=0, end=4)})
        policy = RetryPolicy(max_retries=8)
        sched = SynchronousScheduler(
            network,
            lambda v: VoronoiFloodProtocol(v, is_site=(v == 0)),
            fault_plan=plan, retry_policy=policy,
        )
        stats = sched.run()
        assert stats.corrections > 0
        # Records converged to true hop distances despite the stale start.
        assert sched.protocols[3].records[0][0] == 2
        assert sched.protocols[5].records[0][0] == 3
        assert sched.protocols[4].records[0][0] == 1
        # The paper's ≤ 1 algorithmic broadcast budget still holds.
        assert max(stats.broadcasts_per_node.values()) <= 1

    def test_no_corrections_without_faults(self):
        network = self._network()
        sched = SynchronousScheduler(
            network, lambda v: VoronoiFloodProtocol(v, is_site=(v == 0))
        )
        stats = sched.run()
        assert stats.corrections == 0
        assert sched.protocols[3].records[0][0] == 2
